// Command ptalint runs the static-analysis client suite — race, leak,
// taint-reaches-sink, null-dereference, and use-after-free checkers — over
// a pointer-IR program, answering every alias question from persisted
// pointer information. This is the paper's pipelined-bug-detection
// scenario (§1, scenario 1) as a tool: pay for the points-to analysis
// once, persist it, then run any number of checkers off the same file.
//
// Usage:
//
//	ptalint -ir prog.ir                         # analyze + all five checkers
//	ptalint -ir prog.ir -checks taint,uaf       # a subset
//	ptalint -ir prog.ir -pes prog.pes           # query a persisted Pestrie file
//	ptalint -ir prog.ir -pes prog.pes -incremental  # re-check only the dirtied region
//	ptalint -ir prog.ir -backend demand         # demand-driven baseline oracle
//
// Findings are printed to stdout, one per line, deterministically sorted —
// byte-identical across backends and across runs. Lint warnings from the
// IR validator and the summary count go to stderr.
//
// -incremental reads the delta chain next to -pes (written by pestrie
// delta): the per-function checkers re-run only over the functions owning
// a pointer the chain dirtied — the aliasing closure of the edited rows —
// while unchanged functions keep their base-generation findings, and the
// whole-program checkers (leak, taint) re-run globally. The printed
// listing is identical to a full run at the chain head; the scope note on
// stderr says how much work that took.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"pestrie"
	"pestrie/internal/anders"
	"pestrie/internal/clients"
	"pestrie/internal/core"
	"pestrie/internal/delta"
	"pestrie/internal/demand"
	"pestrie/internal/ir"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "ptalint:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("ptalint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	irPath := fs.String("ir", "", "pointer-IR source file (required)")
	checks := fs.String("checks", "all", "comma-separated checks to run: "+strings.Join(clients.CheckNames, ",")+", or all")
	backend := fs.String("backend", "pestrie", "query backend: pestrie | demand")
	pesPath := fs.String("pes", "", "persisted Pestrie file to query (pestrie backend); built in memory when empty")
	clone := fs.Int("clone", 0, "k-callsite cloning depth (0 = context-insensitive)")
	workers := fs.Int("j", 0, "solver worker count (0 = GOMAXPROCS); findings are identical for any value")
	roots := fs.String("roots", "main", "function whose locals form the leak checker's root set")
	incremental := fs.Bool("incremental", false, "apply the delta chain next to -pes and re-check only the dirtied region")
	noWarn := fs.Bool("no-warn", false, "suppress IR lint warnings")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *irPath == "" {
		return fmt.Errorf("ptalint needs -ir (see -h)")
	}

	f, err := os.Open(*irPath)
	if err != nil {
		return err
	}
	prog, err := pestrie.ParseProgram(f)
	f.Close()
	if err != nil {
		return err
	}
	if !*noWarn {
		for _, w := range prog.Warnings {
			fmt.Fprintf(stderr, "ptalint: warning: %s\n", w)
		}
	}

	res, err := anders.Analyze(prog, &anders.Options{CloneDepth: *clone, Workers: *workers})
	if err != nil {
		return err
	}

	names := clients.CheckNames
	if *checks != "all" && *checks != "" {
		names = strings.Split(*checks, ",")
	}

	if *incremental {
		if *backend != "pestrie" || *pesPath == "" {
			return fmt.Errorf("-incremental needs -pes with the pestrie backend")
		}
		return runIncremental(prog, res, *pesPath, names, *roots, stdout, stderr)
	}

	var q clients.Queries
	switch *backend {
	case "pestrie":
		if *pesPath != "" {
			idx, err := pestrie.LoadFile(*pesPath)
			if err != nil {
				return err
			}
			if idx.NumPointers != res.PM.NumPointers || idx.NumObjects != res.PM.NumObjects {
				return fmt.Errorf("%s holds a %d×%d matrix but %s analyzes to %d×%d — stale persisted file?",
					*pesPath, idx.NumPointers, idx.NumObjects, *irPath, res.PM.NumPointers, res.PM.NumObjects)
			}
			q = idx
		} else {
			q = core.Build(res.PM, nil).Index()
		}
	case "demand":
		if *pesPath != "" {
			return fmt.Errorf("-pes only applies to the pestrie backend")
		}
		q = demand.New(res.PM)
	default:
		return fmt.Errorf("unknown backend %q (pestrie | demand)", *backend)
	}

	findings, err := clients.Run(prog, res, q, names, *roots)
	if err != nil {
		return err
	}
	for _, fd := range findings {
		fmt.Fprintln(stdout, fd)
	}
	fmt.Fprintf(stderr, "ptalint: %d finding(s) from %d statement(s)\n", len(findings), prog.NumStmts())
	return nil
}

// runIncremental answers the checkers from the delta chain next to pesPath:
// a full (cheap) run at the base generation keeps the findings of clean
// functions, and a scoped run at the chain head re-checks just the dirtied
// region. The merged listing is identical to a full run at the head.
func runIncremental(prog *ir.Program, res *anders.Result, pesPath string, names []string, roots string, stdout, stderr io.Writer) error {
	v, chain, err := delta.Open(pesPath)
	if err != nil {
		return err
	}
	defer v.Close()
	if chain.Broken != "" {
		fmt.Fprintf(stderr, "ptalint: warning: chain stops early: %s\n", chain.Broken)
	}
	head := v.Head()
	if head.Pointers() != res.PM.NumPointers || head.Objects() != res.PM.NumObjects {
		return fmt.Errorf("%s at generation %d holds a %d×%d matrix but the program analyzes to %d×%d — stale persisted file?",
			pesPath, head.Generation(), head.Pointers(), head.Objects(), res.PM.NumPointers, res.PM.NumObjects)
	}
	affected := head.AffectedPointers()
	sc, err := clients.RunScoped(prog, res, head, names, roots, affected)
	if err != nil {
		return err
	}
	prev, err := clients.Run(prog, res, v.Base(), names, roots)
	if err != nil {
		return err
	}
	findings := sc.Merge(prev)
	for _, fd := range findings {
		fmt.Fprintln(stdout, fd)
	}
	fmt.Fprintf(stderr, "ptalint: incremental at generation %d (%d segment(s)): %d dirty pointer(s), %d affected, %d/%d dirty function(s)\n",
		head.Generation(), v.Chain(), len(head.DirtyPointers()), len(affected), len(sc.Dirty), len(prog.Funcs))
	fmt.Fprintf(stderr, "ptalint: %d finding(s) from %d statement(s)\n", len(findings), prog.NumStmts())
	return nil
}
