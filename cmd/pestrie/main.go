// Command pestrie encodes points-to matrices into Pestrie persistent files
// and queries them.
//
// Usage:
//
//	pestrie encode -in pm.ptm -out pm.pes [-random-order] [-merge-objects]
//	pestrie info -in pm.pes
//	pestrie query -in pm.pes -op isalias -p 3 -q 7
//	pestrie query -in pm.pes -op aliases|pointsto -p 3
//	pestrie query -in pm.pes -op pointedby -o 5
//
// Matrix files (.ptm) are produced by cmd/ptagen.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"

	"pestrie"
	"pestrie/internal/core"
	"pestrie/internal/perf"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "encode":
		err = encode(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "query":
		err = query(os.Args[2:])
	case "verify":
		err = verify(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pestrie:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pestrie <encode|info|query|verify> [flags]")
	os.Exit(2)
}

// verify recovers the full points-to matrix from a persistent file and
// checks it against the original matrix — an end-to-end losslessness check
// for the encoding pipeline.
func verify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	pes := fs.String("pes", "", "persistent file (.pes)")
	ptm := fs.String("ptm", "", "original matrix file (.ptm)")
	fs.Parse(args)
	if *pes == "" || *ptm == "" {
		return fmt.Errorf("verify needs -pes and -ptm")
	}
	idx, err := pestrie.LoadFile(*pes)
	if err != nil {
		return err
	}
	f, err := os.Open(*ptm)
	if err != nil {
		return err
	}
	pm, err := pestrie.ReadMatrix(f)
	f.Close()
	if err != nil {
		return err
	}
	var recovered *pestrie.Matrix
	dur := perf.Time(func() { recovered = idx.RecoverMatrix() })
	if !recovered.Equal(pm) {
		return fmt.Errorf("MISMATCH: %s does not losslessly encode %s", *pes, *ptm)
	}
	fmt.Printf("OK: %s losslessly encodes %s (%d facts, recovered in %s)\n",
		*pes, *ptm, pm.Edges(), dur)
	return nil
}

func encode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	in := fs.String("in", "", "input matrix file (.ptm)")
	facts := fs.String("facts", "", "input text facts file (pointer object per line) instead of -in")
	out := fs.String("out", "", "output persistent file (.pes)")
	randomOrder := fs.Bool("random-order", false, "use a random object order instead of the hub-degree heuristic")
	seed := fs.Int64("seed", 1, "seed for -random-order")
	mergeObjects := fs.Bool("merge-objects", false, "merge equivalent objects into shared origins")
	noPrune := fs.Bool("no-prune", false, "disable Theorem-2 rectangle pruning")
	fs.Parse(args)
	if (*in == "") == (*facts == "") || *out == "" {
		return fmt.Errorf("encode needs exactly one of -in/-facts, plus -out")
	}
	var pm *pestrie.Matrix
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		pm, err = pestrie.ReadMatrix(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		f, err := os.Open(*facts)
		if err != nil {
			return err
		}
		fa, err := pestrie.ReadFactsText(f)
		f.Close()
		if err != nil {
			return err
		}
		pm = fa.PM
	}
	opts := &core.Options{MergeEquivalentObjects: *mergeObjects, DisablePruning: *noPrune}
	if *randomOrder {
		opts.Order = rand.New(rand.NewSource(*seed)).Perm(pm.NumObjects)
	}
	var trie *pestrie.Trie
	dur := perf.Time(func() { trie = pestrie.Build(pm, opts) })
	if err := pestrie.WriteFile(trie, *out); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	s := trie.Stats()
	fmt.Printf("encoded %d pointers × %d objects in %s\n", pm.NumPointers, pm.NumObjects, dur)
	fmt.Printf("groups=%d tree-edges=%d cross-edges=%d rectangles=%d (pruned %d)\n",
		s.Groups, s.TreeEdges, s.CrossEdges, s.Rectangles, s.Pruned)
	fmt.Printf("file: %s (%s)\n", *out, perf.Bytes(st.Size()))
	return nil
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "persistent file (.pes)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("info needs -in")
	}
	var idx *pestrie.Index
	var err error
	dur := perf.Time(func() { idx, err = pestrie.LoadFile(*in) })
	if err != nil {
		return err
	}
	fmt.Printf("pointers=%d objects=%d groups=%d rectangles=%d\n",
		idx.NumPointers, idx.NumObjects, idx.NumGroups, idx.Rectangles())
	fmt.Printf("decode time: %s, query structure: %s\n", dur, perf.Bytes(idx.MemoryFootprint()))
	return nil
}

func query(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	in := fs.String("in", "", "persistent file (.pes)")
	op := fs.String("op", "isalias", "isalias | aliases | pointsto | pointedby")
	p := fs.Int("p", -1, "pointer ID")
	q := fs.Int("q", -1, "second pointer ID (isalias)")
	o := fs.Int("o", -1, "object ID (pointedby)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("query needs -in")
	}
	idx, err := pestrie.LoadFile(*in)
	if err != nil {
		return err
	}
	printList := func(xs []int) {
		sort.Ints(xs)
		fmt.Println(len(xs), "results:", xs)
	}
	// Out-of-range IDs are hard errors, not empty result sets: a silent
	// empty answer for pointer 10^6 against a 10^3-pointer file hides the
	// mismatch between the file and whatever produced the ID.
	checkPointer := func(name string, v int) error {
		if v >= idx.NumPointers {
			return fmt.Errorf("-%s %d out of range: %s has pointers 0..%d", name, v, *in, idx.NumPointers-1)
		}
		return nil
	}
	switch *op {
	case "isalias":
		if *p < 0 || *q < 0 {
			return fmt.Errorf("isalias needs -p and -q")
		}
		if err := checkPointer("p", *p); err != nil {
			return err
		}
		if err := checkPointer("q", *q); err != nil {
			return err
		}
		fmt.Println(idx.IsAlias(*p, *q))
	case "aliases":
		if *p < 0 {
			return fmt.Errorf("aliases needs -p")
		}
		if err := checkPointer("p", *p); err != nil {
			return err
		}
		printList(idx.ListAliases(*p))
	case "pointsto":
		if *p < 0 {
			return fmt.Errorf("pointsto needs -p")
		}
		if err := checkPointer("p", *p); err != nil {
			return err
		}
		printList(idx.ListPointsTo(*p))
	case "pointedby":
		if *o < 0 {
			return fmt.Errorf("pointedby needs -o")
		}
		if *o >= idx.NumObjects {
			return fmt.Errorf("-o %d out of range: %s has objects 0..%d", *o, *in, idx.NumObjects-1)
		}
		printList(idx.ListPointedBy(*o))
	default:
		return fmt.Errorf("unknown op %q", *op)
	}
	return nil
}
