// Command pestrie encodes points-to matrices into Pestrie persistent files
// and queries them.
//
// Usage:
//
//	pestrie encode -in pm.ptm -out pm.pes [-v2] [-random-order] [-merge-objects] [-j N]
//	pestrie info -in pm.pes [-j N]
//	pestrie query -in pm.pes -op isalias -p 3 -q 7
//	pestrie query -in pm.pes -op aliases|pointsto -p 3 [-at gen|head]
//	pestrie query -in pm.pes -op pointedby -o 5
//	pestrie delta -base pm.pes -new updated.ptm [-out pm.d000001.pesd]
//	pestrie compact -in pm.pes -out pm2.pes [-gen N] [-v2] [-j N]
//	pestrie serve -in pm.pes[,name=other.pes...] -addr :7171
//	pestrie serve -store-dir ./pes -mem-budget 64MiB -reload-interval 30s
//	pestrie serve -in pm.pes -shards 4 -addr :7171
//	pestrie coordinate -shards http://h1:7171,http://h2:7171 -addr :7170
//	pestrie bench-serve -addr http://host:7171 -in pm.pes -n 200
//	pestrie bench-serve -in pm.pes -shards 3 -tenants 4 -zipf 1.2
//
// serve answers the four Table-1 queries plus batches over HTTP/JSON (see
// internal/server); bench-serve replays a §7.1.1 base-pointer query mix
// against a running server and reports throughput and latency.
//
// serve -shards N spawns N shard servers on loopback listeners (sharing
// one decoded catalog, or one managed store) and fronts them with a
// coordinator on -addr: queries hash-partition over the pointer-ID space,
// answers dedup through an answer cache plus singleflight, and the reply
// is byte-identical to a single-process server at the same generation.
// coordinate fronts shard servers that are already running elsewhere.
// bench-serve -shards N spawns such a tier itself and drives it — with
// -tenants and -zipf for a skewed multi-tenant stream, and -min-hit-ratio
// to gate on the answer cache actually absorbing the repeats.
//
// With -store-dir, -mem-budget, or -reload-interval, serve routes backends
// through the managed index store (see internal/store): .pes files decode
// lazily on first query, cold indexes are evicted to stay under the memory
// budget, and rewritten files are hot-swapped in without a restart.
// -pprof mounts net/http/pprof for profiling the eviction hot path.
//
// encode -v2 writes the zero-copy PES2 format: info, query, and serve
// memory-map such files and answer queries straight off the mapping
// instead of decoding them. Replace a served PES2 file only by rename.
//
// delta diffs the facts a base (plus any delta chain next to it) currently
// serves against an updated matrix and writes the difference as the next
// stamped .pesd segment (see internal/delta and FORMATS.md); a serving
// store picks the segment up on its next refresh without re-decoding the
// base. query -at pins a query to one generation of the chain; info prints
// the chain. compact folds base+chain back into a fresh standalone file,
// byte-identical to encoding the same facts from scratch.
//
// Matrix files (.ptm) are produced by cmd/ptagen.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pestrie"
	"pestrie/internal/bitset"
	"pestrie/internal/core"
	"pestrie/internal/delta"
	"pestrie/internal/perf"
	"pestrie/internal/server"
	"pestrie/internal/store"
	"pestrie/internal/synth"
)

// budgetString renders a store budget for the startup banner.
func budgetString(n int64) string {
	if n <= 0 {
		return "unlimited"
	}
	return perf.Bytes(n)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "encode":
		err = encode(os.Args[2:])
	case "info":
		err = info(os.Args[2:])
	case "query":
		err = query(os.Args[2:])
	case "verify":
		err = verify(os.Args[2:])
	case "delta":
		err = deltaCmd(os.Args[2:])
	case "compact":
		err = compact(os.Args[2:])
	case "serve":
		err = serve(os.Args[2:])
	case "coordinate":
		err = coordinate(os.Args[2:])
	case "bench-serve":
		err = benchServe(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pestrie:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: pestrie <encode|info|query|verify|delta|compact|serve|coordinate|bench-serve> [flags]")
	os.Exit(2)
}

// parseInSpec parses the -in specification: a comma-separated list of
// [name=]path.pes entries. An unnamed entry takes its file stem as backend
// name; a single unnamed entry is also reachable as "default" (the
// implicit backend of one-index deployments).
func parseInSpec(spec string) ([]store.Spec, error) {
	entries := strings.Split(spec, ",")
	out := make([]store.Spec, 0, len(entries))
	for _, e := range entries {
		name, path := "", e
		if i := strings.IndexByte(e, '='); i >= 0 {
			name, path = e[:i], e[i+1:]
		}
		if path == "" {
			return nil, fmt.Errorf("serve: empty path in -in entry %q", e)
		}
		if name == "" {
			name = strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
			if len(entries) == 1 {
				name = "default"
			}
		}
		out = append(out, store.Spec{Name: name, Path: path})
	}
	return out, nil
}

// newQueryServer builds an eager server from the -in specification: every
// entry is decoded at startup and held resident. Load and registration
// failures name the offending entry, so a broken path in a multi-backend
// spec is attributable.
func newQueryServer(spec string, opts server.Options) (*server.Server, error) {
	specs, err := parseInSpec(spec)
	if err != nil {
		return nil, err
	}
	s := server.New(opts)
	for _, sp := range specs {
		idx, err := pestrie.LoadFile(sp.Path)
		if err != nil {
			return nil, fmt.Errorf("serve: -in entry %s=%s: %w", sp.Name, sp.Path, err)
		}
		if err := s.AddIndex(sp.Name, idx); err != nil {
			return nil, fmt.Errorf("serve: -in entry %s=%s: %w", sp.Name, sp.Path, err)
		}
	}
	return s, nil
}

// newStoreServer builds a store-backed server: -in entries and -store-dir
// files are catalogued but not decoded; the store loads them lazily on
// first query, evicts under memBudget, and hot-swaps rewritten files every
// reload interval.
func newStoreServer(spec, dir string, opts server.Options, sopts store.Options) (*server.Server, *store.Store, error) {
	st := store.New(sopts)
	if spec != "" {
		specs, err := parseInSpec(spec)
		if err != nil {
			st.Close()
			return nil, nil, err
		}
		for _, sp := range specs {
			if err := st.Add(sp.Name, sp.Path); err != nil {
				st.Close()
				return nil, nil, fmt.Errorf("serve: -in entry %s=%s: %w", sp.Name, sp.Path, err)
			}
		}
	}
	if dir != "" {
		if _, err := st.AddDir(dir); err != nil {
			st.Close()
			return nil, nil, err
		}
	}
	opts.Store = st
	return server.New(opts), st, nil
}

// shardTier is an in-process shard fleet: n servers on loopback listeners
// fronted by one Coordinator. serve -shards and bench-serve -shards both
// build one; coordinate fronts external shards instead.
type shardTier struct {
	servers []*server.Server
	urls    []string
	coord   *server.Coordinator
	cleanup func()
}

// startShards puts each server on its own loopback listener and returns
// the tier with a coordinator built over the shard URLs.
func startShards(servers []*server.Server, copts server.CoordOptions) (*shardTier, error) {
	t := &shardTier{servers: servers}
	var listeners []net.Listener
	stop := func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		for _, s := range servers {
			s.Shutdown(ctx)
		}
		for _, l := range listeners {
			l.Close()
		}
	}
	for _, s := range servers {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return nil, err
		}
		listeners = append(listeners, l)
		t.urls = append(t.urls, "http://"+l.Addr().String())
		go s.Serve(l)
	}
	copts.Shards = t.urls
	coord, err := server.NewCoordinator(copts)
	if err != nil {
		stop()
		return nil, err
	}
	t.coord = coord
	t.cleanup = stop
	return t, nil
}

// buildServers constructs n identical servers over one shared catalog:
// eager -in files are decoded once and registered into every server
// (core.Index is immutable, so shards share it safely); store mode shares
// one managed store, so lazy loads, eviction, and hot swaps happen once
// for the whole tier. cleanup releases the shared store, if any.
func buildServers(n int, in, dir string, opts server.Options, sopts store.Options, useStore bool) ([]*server.Server, *store.Store, func(), error) {
	if useStore {
		st := store.New(sopts)
		if in != "" {
			specs, err := parseInSpec(in)
			if err != nil {
				st.Close()
				return nil, nil, nil, err
			}
			for _, sp := range specs {
				if err := st.Add(sp.Name, sp.Path); err != nil {
					st.Close()
					return nil, nil, nil, fmt.Errorf("serve: -in entry %s=%s: %w", sp.Name, sp.Path, err)
				}
			}
		}
		if dir != "" {
			if _, err := st.AddDir(dir); err != nil {
				st.Close()
				return nil, nil, nil, err
			}
		}
		opts.Store = st
		servers := make([]*server.Server, n)
		for i := range servers {
			servers[i] = server.New(opts)
		}
		return servers, st, func() { st.Close() }, nil
	}
	specs, err := parseInSpec(in)
	if err != nil {
		return nil, nil, nil, err
	}
	servers := make([]*server.Server, n)
	for i := range servers {
		servers[i] = server.New(opts)
	}
	for _, sp := range specs {
		idx, err := pestrie.LoadFile(sp.Path)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("serve: -in entry %s=%s: %w", sp.Name, sp.Path, err)
		}
		for _, s := range servers {
			if err := s.AddIndex(sp.Name, idx); err != nil {
				return nil, nil, nil, fmt.Errorf("serve: -in entry %s=%s: %w", sp.Name, sp.Path, err)
			}
		}
	}
	return servers, nil, func() {}, nil
}

// serveLoop runs listenAndServe until it returns or SIGINT/SIGTERM, then
// drains gracefully via shutdown.
func serveLoop(listenAndServe func() error, shutdown func(context.Context) error) error {
	done := make(chan error, 1)
	go func() { done <- listenAndServe() }()
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		return err
	case <-sig:
		fmt.Println("shutting down")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := shutdown(ctx); err != nil {
			return err
		}
		<-done
		return nil
	}
}

func serve(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	bitset.Flag(fs)
	in := fs.String("in", "", "persistent files to serve: [name=]file.pes, comma-separated")
	addr := fs.String("addr", ":7171", "listen address")
	timeout := fs.Duration("timeout", 10*time.Second, "per-request deadline")
	workers := fs.Int("workers", 0, "batch worker-pool size (0 = GOMAXPROCS)")
	maxBatch := fs.Int("max-batch", 0, "max queries per batch request (0 = 65536)")
	storeDir := fs.String("store-dir", "", "directory of .pes files served lazily through the index store")
	memBudget := fs.String("mem-budget", "", "decoded-index memory budget for the store, e.g. 64MiB (empty = unlimited)")
	reload := fs.Duration("reload-interval", 0, "checksum poll period for hot-swapping rewritten files (0 = off)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	shards := fs.Int("shards", 0, "spawn N loopback shard servers behind a coordinator on -addr (0 = single process)")
	cacheBudget := fs.String("cache-budget", "64MiB", "coordinator answer-cache budget (0 disables)")
	shardTimeout := fs.Duration("shard-timeout", 10*time.Second, "coordinator per-shard sub-request deadline")
	genTTL := fs.Duration("gen-ttl", 2*time.Second, "coordinator generation-watermark revalidation period")
	fs.Parse(args)
	useStore := *storeDir != "" || *memBudget != "" || *reload > 0
	if *in == "" && !useStore {
		return fmt.Errorf("serve needs -in or -store-dir")
	}
	opts := server.Options{
		RequestTimeout: *timeout,
		BatchWorkers:   *workers,
		MaxBatch:       *maxBatch,
		EnablePprof:    *pprofOn,
	}
	var sopts store.Options
	if useStore {
		var budget int64
		if *memBudget != "" {
			var err error
			if budget, err = store.ParseBytes(*memBudget); err != nil {
				return err
			}
		}
		sopts = store.Options{MemBudget: budget, ReloadInterval: *reload}
	}
	n := *shards
	if n < 0 {
		return fmt.Errorf("serve: -shards wants a non-negative count, got %d", n)
	}
	if n == 0 {
		n = 1
	}
	servers, st, cleanup, err := buildServers(n, *in, *storeDir, opts, sopts, useStore)
	if err != nil {
		return err
	}
	defer cleanup()
	if useStore {
		names := st.Names()
		fmt.Printf("store: %d catalogued backends (budget %s, reload %s): %s\n",
			len(names), budgetString(sopts.MemBudget), *reload, strings.Join(names, " "))
	} else {
		for _, b := range servers[0].Backends() {
			fmt.Printf("backend %s: %d pointers, %d objects, %d groups, %d rectangles\n",
				b.Name, b.Pointers, b.Objects, b.Groups, b.Rectangles)
		}
	}
	if *pprofOn {
		fmt.Println("pprof mounted at /debug/pprof/")
	}

	if *shards == 0 {
		fmt.Printf("serving on %s (timeout %s)\n", *addr, *timeout)
		s := servers[0]
		return serveLoop(func() error { return s.ListenAndServe(*addr) }, s.Shutdown)
	}

	budget, err := store.ParseBytes(*cacheBudget)
	if err != nil {
		return fmt.Errorf("serve: -cache-budget: %w", err)
	}
	if budget == 0 {
		budget = -1 // explicit "0" means off; CoordOptions zero means default
	}
	tier, err := startShards(servers, server.CoordOptions{
		RequestTimeout: *timeout,
		ShardTimeout:   *shardTimeout,
		CacheBytes:     budget,
		MaxBatch:       *maxBatch,
		GenTTL:         *genTTL,
	})
	if err != nil {
		return err
	}
	defer tier.cleanup()
	fmt.Printf("shards: %s\n", strings.Join(tier.urls, " "))
	fmt.Printf("coordinating on %s (timeout %s, shard timeout %s, cache %s)\n",
		*addr, *timeout, *shardTimeout, *cacheBudget)
	return serveLoop(func() error { return tier.coord.ListenAndServe(*addr) }, tier.coord.Shutdown)
}

// coordinate fronts already-running shard servers with a coordinator.
func coordinate(args []string) error {
	fs := flag.NewFlagSet("coordinate", flag.ExitOnError)
	shards := fs.String("shards", "", "comma-separated shard base URLs (order is the hash partition)")
	addr := fs.String("addr", ":7170", "listen address")
	timeout := fs.Duration("timeout", 30*time.Second, "per-request deadline")
	shardTimeout := fs.Duration("shard-timeout", 10*time.Second, "per-shard sub-request deadline")
	cacheBudget := fs.String("cache-budget", "64MiB", "answer-cache budget (0 disables)")
	genTTL := fs.Duration("gen-ttl", 2*time.Second, "generation-watermark revalidation period")
	maxBatch := fs.Int("max-batch", 0, "max queries per batch request (0 = 65536)")
	fs.Parse(args)
	if *shards == "" {
		return fmt.Errorf("coordinate needs -shards")
	}
	urls := strings.Split(*shards, ",")
	for i, u := range urls {
		urls[i] = strings.TrimSpace(u)
		if urls[i] == "" {
			return fmt.Errorf("coordinate: empty URL in -shards")
		}
	}
	budget, err := store.ParseBytes(*cacheBudget)
	if err != nil {
		return fmt.Errorf("coordinate: -cache-budget: %w", err)
	}
	if budget == 0 {
		budget = -1
	}
	coord, err := server.NewCoordinator(server.CoordOptions{
		Shards:         urls,
		RequestTimeout: *timeout,
		ShardTimeout:   *shardTimeout,
		CacheBytes:     budget,
		MaxBatch:       *maxBatch,
		GenTTL:         *genTTL,
	})
	if err != nil {
		return err
	}
	fmt.Printf("coordinating %d shards on %s (timeout %s, shard timeout %s, cache %s)\n",
		len(urls), *addr, *timeout, *shardTimeout, *cacheBudget)
	return serveLoop(func() error { return coord.ListenAndServe(*addr) }, coord.Shutdown)
}

// parseMix parses "isalias=60,aliases=15,pointsto=15,pointedby=10".
func parseMix(spec string) (server.Mix, error) {
	m := server.Mix{}
	for _, part := range strings.Split(spec, ",") {
		kv := strings.SplitN(strings.TrimSpace(part), "=", 2)
		if len(kv) != 2 {
			return m, fmt.Errorf("bench-serve: bad -mix entry %q", part)
		}
		var w int
		if _, err := fmt.Sscanf(kv[1], "%d", &w); err != nil || w < 0 {
			return m, fmt.Errorf("bench-serve: bad -mix weight %q", part)
		}
		switch kv[0] {
		case "isalias":
			m.IsAlias = w
		case "aliases":
			m.Aliases = w
		case "pointsto":
			m.PointsTo = w
		case "pointedby":
			m.PointedBy = w
		default:
			return m, fmt.Errorf("bench-serve: unknown -mix op %q", kv[0])
		}
	}
	return m, nil
}

func benchServe(args []string) error {
	fs := flag.NewFlagSet("bench-serve", flag.ExitOnError)
	bitset.Flag(fs)
	addr := fs.String("addr", "http://localhost:7171", "server base URL")
	in := fs.String("in", "", "persistent file the server loaded (query-population source)")
	backend := fs.String("backend", "", "backend name (empty for single-backend servers)")
	n := fs.Int("n", 200, "batch requests to send")
	batch := fs.Int("batch", 256, "queries per batch")
	conc := fs.Int("concurrency", 8, "in-flight requests")
	stride := fs.Int("stride", 10, "base-pointer stride (§7.1.1 population)")
	seed := fs.Int64("seed", 1, "query-stream seed")
	mixSpec := fs.String("mix", "", "query mix, e.g. isalias=60,aliases=15,pointsto=15,pointedby=10")
	shards := fs.Int("shards", 0, "spawn a loopback coordinator tier of N shards from -in and bench it (ignores -addr)")
	tenants := fs.Int("tenants", 0, "address batches round-robin to N tenant backends t0..tN-1 (registered when -shards spawns the tier)")
	zipfS := fs.Float64("zipf", 0, "zipfian exponent for argument skew (>1 enables; 0 = uniform)")
	minHitRatio := fs.Float64("min-hit-ratio", -1, "fail unless the coordinator answer-cache hit ratio reaches this (needs a coordinator target)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("bench-serve needs -in")
	}
	idx, err := pestrie.LoadFile(*in)
	if err != nil {
		return err
	}
	// The §7.1.1 query population: base pointers of loads and stores,
	// approximated by the stride sample over pointers with non-empty
	// points-to sets, recovered from the persistent image itself.
	pm := idx.RecoverMatrix()
	base := synth.BasePointers(pm, *stride)
	if len(base) == 0 {
		return fmt.Errorf("bench-serve: %s has no pointers with non-empty points-to sets", *in)
	}
	mix := server.DefaultMix
	if *mixSpec != "" {
		if mix, err = parseMix(*mixSpec); err != nil {
			return err
		}
	}
	var backends []string
	if *tenants > 1 {
		for i := 0; i < *tenants; i++ {
			backends = append(backends, fmt.Sprintf("t%d", i))
		}
	}
	target := strings.TrimSuffix(*addr, "/")
	if *shards > 0 {
		// Self-contained tier: N loopback shard servers all serving the
		// already-decoded index (under every tenant name), fronted by a
		// coordinator on another loopback listener.
		servers := make([]*server.Server, *shards)
		names := backends
		if len(names) == 0 {
			names = []string{"default"}
		}
		for i := range servers {
			servers[i] = server.New(server.Options{})
			for _, name := range names {
				if err := servers[i].AddIndex(name, idx); err != nil {
					return err
				}
			}
		}
		tier, err := startShards(servers, server.CoordOptions{})
		if err != nil {
			return err
		}
		defer tier.cleanup()
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go tier.coord.Serve(l)
		defer func() {
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			tier.coord.Shutdown(ctx)
		}()
		target = "http://" + l.Addr().String()
		fmt.Printf("spawned %d-shard tier (tenants %s) coordinated at %s\n",
			*shards, strings.Join(names, " "), target)
	}
	fmt.Printf("replaying %d×%d queries over %d base pointers against %s\n",
		*n, *batch, len(base), target)
	report, err := server.RunBench(context.Background(), server.BenchOptions{
		URL:         target,
		Backend:     *backend,
		Backends:    backends,
		Base:        base,
		NumObjects:  idx.NumObjects,
		Requests:    *n,
		BatchSize:   *batch,
		Concurrency: *conc,
		Seed:        *seed,
		Mix:         mix,
		ZipfS:       *zipfS,
	})
	if err != nil {
		return err
	}
	fmt.Println(report)
	// A coordinator target also reports its deduplication economics: the
	// answer-cache hit ratio, how the shard fan-out balanced, and the two
	// other dedup levels. Absence of the endpoint (a plain server) is not
	// an error unless -min-hit-ratio demanded a cache.
	cstats, err := server.FetchCoordStats(context.Background(), target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pestrie: coordinator stats unavailable: %v\n", err)
	} else if cstats != nil {
		fmt.Printf("cache: %.1f%% hit ratio (%d hits, %d misses, %s of %s, %d evictions)\n",
			100*cstats.Cache.HitRatio, cstats.Cache.Hits, cstats.Cache.Misses,
			perf.Bytes(cstats.Cache.Bytes), perf.Bytes(cstats.Cache.Budget), cstats.Cache.Evictions)
		fmt.Printf("dedup: %d intra-batch, %d singleflight joins\n",
			cstats.BatchDedup, cstats.SingleflightWaits)
		for i, sh := range cstats.Shards {
			fmt.Printf("shard %d %s: %d requests, %d queries, %d errors, p50=%s p99=%s\n",
				i, sh.URL, sh.Requests, sh.Queries, sh.Errors,
				time.Duration(sh.Latency.P50NS), time.Duration(sh.Latency.P99NS))
		}
	}
	if *minHitRatio >= 0 {
		if cstats == nil {
			return fmt.Errorf("bench-serve: -min-hit-ratio needs a coordinator target, %s has no /debug/coord", target)
		}
		if cstats.Cache.HitRatio < *minHitRatio {
			return fmt.Errorf("bench-serve: cache hit ratio %.3f below required %.3f",
				cstats.Cache.HitRatio, *minHitRatio)
		}
	}
	// Store-backed servers also expose refresh economics: how many times
	// each backend was fully decoded vs advanced by applying delta
	// segments, and what each path cost. Absence of the endpoint (an eager
	// -in server) is not an error.
	stats, err := server.FetchStoreStats(context.Background(), target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pestrie: store stats unavailable: %v\n", err)
		return nil
	}
	if stats == nil {
		return nil
	}
	for _, e := range stats.Backends {
		if *backend != "" && e.Name != *backend {
			continue
		}
		line := fmt.Sprintf("store %s: generation stamp %d, chain %d, loads=%d (p50=%s)",
			e.Name, e.Stamp, e.DeltaChain, e.Loads, time.Duration(e.LoadLatency.P50NS))
		if e.Applies > 0 {
			line += fmt.Sprintf(", delta applies=%d (p50=%s)", e.Applies, time.Duration(e.ApplyLatency.P50NS))
		}
		if e.ChainNote != "" {
			line += ", chain stops early: " + e.ChainNote
		}
		fmt.Println(line)
	}
	return nil
}

// readMatrixFile loads a .ptm matrix file.
func readMatrixFile(path string) (*pestrie.Matrix, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return pestrie.ReadMatrix(f)
}

// deltaCmd diffs the facts the base (plus its on-disk delta chain)
// currently serves against an updated matrix and writes the difference as
// the next stamped segment. The base file is never rewritten — a serving
// store applies the new segment on its next refresh.
func deltaCmd(args []string) error {
	fs := flag.NewFlagSet("delta", flag.ExitOnError)
	bitset.Flag(fs)
	base := fs.String("base", "", "served base file (.pes) the segment chains onto")
	newPM := fs.String("new", "", "matrix file (.ptm) holding the updated facts")
	out := fs.String("out", "", "output segment path (default: the next stamp next to -base)")
	fs.Parse(args)
	if *base == "" || *newPM == "" {
		return fmt.Errorf("delta needs -base and -new")
	}
	chain, err := delta.LoadChain(*base)
	if err != nil {
		return err
	}
	if chain.Broken != "" {
		// Appending past a broken link would stamp a segment discovery can
		// never reach; make the operator clean up (or compact) first.
		return fmt.Errorf("delta: chain next to %s is broken (%s); remove the stale segments or compact first", *base, chain.Broken)
	}
	idx, err := pestrie.OpenFile(*base)
	if err != nil {
		return err
	}
	defer idx.Close()
	cur, err := delta.MatrixAt(idx, chain.Segs, chain.Head())
	if err != nil {
		return err
	}
	next, err := readMatrixFile(*newPM)
	if err != nil {
		return err
	}
	seg, err := delta.Diff(cur, next)
	if err != nil {
		return err
	}
	if seg == nil {
		fmt.Printf("no changes: generation %d of %s already holds the facts of %s\n",
			chain.Head(), *base, *newPM)
		return nil
	}
	seg.Gen = chain.Head() + 1
	seg.Parent = chain.Head()
	seg.BaseHint = chain.Hint
	path := *out
	if path == "" {
		path = delta.SegmentPath(*base, seg.Gen)
	}
	if err := delta.WriteSegmentFile(path, seg); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	adds, dels := seg.Counts()
	fmt.Printf("segment: %s (generation %d on %d, +%d -%d facts, %d pointers × %d objects, %s)\n",
		path, seg.Gen, seg.Parent, adds, dels, seg.NumPointers, seg.NumObjects, perf.Bytes(st.Size()))
	return nil
}

// compact folds a base and its delta chain back into a standalone
// persistent file. Because RecoverMatrix inverts the base exactly, replay
// is strict, and core.Build is deterministic, the output is byte-identical
// to encoding the same facts from scratch with the same options — which is
// what CI checks.
func compact(args []string) error {
	fs := flag.NewFlagSet("compact", flag.ExitOnError)
	bitset.Flag(fs)
	in := fs.String("in", "", "base file (.pes) whose delta chain to fold in")
	out := fs.String("out", "", "output persistent file (.pes)")
	gen := fs.Uint64("gen", 0, "generation to compact through (0 = chain head)")
	mergeObjects := fs.Bool("merge-objects", false, "merge equivalent objects into shared origins")
	noPrune := fs.Bool("no-prune", false, "disable Theorem-2 rectangle pruning")
	v2 := fs.Bool("v2", false, "write the zero-copy PES2 format")
	jobs := fs.Int("j", 0, "construction worker count (0 = GOMAXPROCS); output is identical for any value")
	fs.Parse(args)
	if *in == "" || *out == "" {
		return fmt.Errorf("compact needs -in and -out")
	}
	chain, err := delta.LoadChain(*in)
	if err != nil {
		return err
	}
	if chain.Broken != "" {
		fmt.Fprintf(os.Stderr, "pestrie: warning: chain stops early: %s\n", chain.Broken)
	}
	g := *gen
	if g == 0 {
		g = chain.Head()
	}
	idx, err := pestrie.OpenFile(*in)
	if err != nil {
		return err
	}
	defer idx.Close()
	opts := &core.Options{MergeEquivalentObjects: *mergeObjects, DisablePruning: *noPrune, Workers: *jobs}
	var trie *pestrie.Trie
	var cerr error
	dur := perf.Time(func() { trie, cerr = delta.Compact(idx, chain.Segs, g, opts) })
	if cerr != nil {
		return cerr
	}
	format := "PES1"
	if *v2 {
		format = "PES2"
		if err := pestrie.WriteFileV2(trie.Index(), *out); err != nil {
			return err
		}
	} else if err := pestrie.WriteFile(trie, *out); err != nil {
		return err
	}
	folded := 0
	for _, s := range chain.Segs {
		if s.Gen <= g {
			folded++
		}
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	fmt.Printf("compacted %s through generation %d (%d segments folded) in %s\n", *in, g, folded, dur)
	fmt.Printf("file: %s (%s, %s)\n", *out, format, perf.Bytes(st.Size()))
	return nil
}

// verify recovers the full points-to matrix from a persistent file and
// checks it against the original matrix — an end-to-end losslessness check
// for the encoding pipeline.
func verify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	bitset.Flag(fs)
	pes := fs.String("pes", "", "persistent file (.pes)")
	ptm := fs.String("ptm", "", "original matrix file (.ptm)")
	fs.Parse(args)
	if *pes == "" || *ptm == "" {
		return fmt.Errorf("verify needs -pes and -ptm")
	}
	idx, err := pestrie.LoadFile(*pes)
	if err != nil {
		return err
	}
	f, err := os.Open(*ptm)
	if err != nil {
		return err
	}
	pm, err := pestrie.ReadMatrix(f)
	f.Close()
	if err != nil {
		return err
	}
	var recovered *pestrie.Matrix
	dur := perf.Time(func() { recovered = idx.RecoverMatrix() })
	if !recovered.Equal(pm) {
		return fmt.Errorf("MISMATCH: %s does not losslessly encode %s", *pes, *ptm)
	}
	fmt.Printf("OK: %s losslessly encodes %s (%d facts, recovered in %s)\n",
		*pes, *ptm, pm.Edges(), dur)
	return nil
}

func encode(args []string) error {
	fs := flag.NewFlagSet("encode", flag.ExitOnError)
	bitset.Flag(fs)
	in := fs.String("in", "", "input matrix file (.ptm)")
	facts := fs.String("facts", "", "input text facts file (pointer object per line) instead of -in")
	out := fs.String("out", "", "output persistent file (.pes)")
	randomOrder := fs.Bool("random-order", false, "use a random object order instead of the hub-degree heuristic")
	seed := fs.Int64("seed", 1, "seed for -random-order")
	mergeObjects := fs.Bool("merge-objects", false, "merge equivalent objects into shared origins")
	noPrune := fs.Bool("no-prune", false, "disable Theorem-2 rectangle pruning")
	v2 := fs.Bool("v2", false, "write the zero-copy PES2 format (memory-mapped by readers; larger than PES1 but opens without a decode)")
	jobs := fs.Int("j", 0, "construction worker count (0 = GOMAXPROCS, 1 = sequential); output is identical for any value")
	fs.Parse(args)
	if (*in == "") == (*facts == "") || *out == "" {
		return fmt.Errorf("encode needs exactly one of -in/-facts, plus -out")
	}
	var pm *pestrie.Matrix
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		pm, err = pestrie.ReadMatrix(f)
		f.Close()
		if err != nil {
			return err
		}
	} else {
		f, err := os.Open(*facts)
		if err != nil {
			return err
		}
		fa, err := pestrie.ReadFactsText(f)
		f.Close()
		if err != nil {
			return err
		}
		pm = fa.PM
	}
	opts := &core.Options{MergeEquivalentObjects: *mergeObjects, DisablePruning: *noPrune, Workers: *jobs}
	if *randomOrder {
		opts.Order = rand.New(rand.NewSource(*seed)).Perm(pm.NumObjects)
	}
	var trie *pestrie.Trie
	dur := perf.Time(func() { trie = pestrie.Build(pm, opts) })
	format := "PES1"
	if *v2 {
		format = "PES2"
		if err := pestrie.WriteFileV2(trie.Index(), *out); err != nil {
			return err
		}
	} else if err := pestrie.WriteFile(trie, *out); err != nil {
		return err
	}
	st, err := os.Stat(*out)
	if err != nil {
		return err
	}
	s := trie.Stats()
	fmt.Printf("encoded %d pointers × %d objects in %s\n", pm.NumPointers, pm.NumObjects, dur)
	fmt.Printf("groups=%d tree-edges=%d cross-edges=%d rectangles=%d (pruned %d)\n",
		s.Groups, s.TreeEdges, s.CrossEdges, s.Rectangles, s.Pruned)
	fmt.Printf("file: %s (%s, %s)\n", *out, format, perf.Bytes(st.Size()))
	return nil
}

func info(args []string) error {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "", "persistent file (.pes)")
	jobs := fs.Int("j", 0, "decode worker count (0 = GOMAXPROCS, 1 = sequential)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("info needs -in")
	}
	var idx *pestrie.Index
	var err error
	dur := perf.Time(func() { idx, err = core.OpenFileWith(*in, *jobs) })
	if err != nil {
		return err
	}
	defer idx.Close()
	format := "PES1"
	if idx.Mapped() {
		format = "PES2"
	}
	fmt.Printf("format=%s pointers=%d objects=%d groups=%d rectangles=%d\n",
		format, idx.NumPointers, idx.NumObjects, idx.NumGroups, idx.Rectangles())
	if idx.Mapped() {
		fmt.Printf("open time: %s, mapped zero-copy: %s\n", dur, perf.Bytes(idx.MemoryFootprint()))
	} else {
		fmt.Printf("decode time: %s, query structure: %s\n", dur, perf.Bytes(idx.MemoryFootprint()))
	}
	// Delta chain next to the base, if any: one line per segment plus the
	// head stamp queries would answer at.
	chain, err := delta.LoadChain(*in)
	if err != nil {
		return err
	}
	for i, seg := range chain.Segs {
		adds, dels := seg.Counts()
		fmt.Printf("delta %s: generation %d on %d, +%d -%d facts, %d pointers × %d objects\n",
			filepath.Base(chain.Paths[i]), seg.Gen, seg.Parent, adds, dels,
			seg.NumPointers, seg.NumObjects)
	}
	if len(chain.Segs) > 0 {
		fmt.Printf("chain: %d segments, head generation %d\n", len(chain.Segs), chain.Head())
	}
	if chain.Broken != "" {
		fmt.Printf("chain stops early: %s\n", chain.Broken)
	}
	return nil
}

func query(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	in := fs.String("in", "", "persistent file (.pes)")
	op := fs.String("op", "isalias", "isalias | aliases | pointsto | pointedby")
	p := fs.Int("p", -1, "pointer ID")
	q := fs.Int("q", -1, "second pointer ID (isalias)")
	o := fs.Int("o", -1, "object ID (pointedby)")
	at := fs.String("at", "", `generation to answer at: a stamp, or "head" for the newest delta segment (default: the base alone, ignoring any chain)`)
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("query needs -in")
	}
	var idx delta.Index
	if *at == "" {
		base, err := pestrie.OpenFile(*in)
		if err != nil {
			return err
		}
		defer base.Close()
		idx = base
	} else {
		v, chain, err := delta.Open(*in)
		if err != nil {
			return err
		}
		defer v.Close()
		if chain.Broken != "" {
			fmt.Fprintf(os.Stderr, "pestrie: warning: chain stops early: %s\n", chain.Broken)
		}
		sn := v.Head()
		if *at != "head" {
			g, err := strconv.ParseUint(*at, 10, 64)
			if err != nil {
				return fmt.Errorf("query: -at wants a generation stamp or \"head\", got %q", *at)
			}
			if sn = v.At(g); sn == nil {
				return fmt.Errorf("query: generation %d predates the base (generation %d)", g, v.BaseGeneration())
			}
		}
		fmt.Printf("at generation %d (chain of %d)\n", sn.Generation(), v.Chain())
		idx = sn
	}
	printList := func(xs []int) {
		sort.Ints(xs)
		fmt.Println(len(xs), "results:", xs)
	}
	// Out-of-range IDs are hard errors, not empty result sets: a silent
	// empty answer for pointer 10^6 against a 10^3-pointer file hides the
	// mismatch between the file and whatever produced the ID.
	checkPointer := func(name string, v int) error {
		if v >= idx.Pointers() {
			return fmt.Errorf("-%s %d out of range: %s has pointers 0..%d", name, v, *in, idx.Pointers()-1)
		}
		return nil
	}
	switch *op {
	case "isalias":
		if *p < 0 || *q < 0 {
			return fmt.Errorf("isalias needs -p and -q")
		}
		if err := checkPointer("p", *p); err != nil {
			return err
		}
		if err := checkPointer("q", *q); err != nil {
			return err
		}
		fmt.Println(idx.IsAlias(*p, *q))
	case "aliases":
		if *p < 0 {
			return fmt.Errorf("aliases needs -p")
		}
		if err := checkPointer("p", *p); err != nil {
			return err
		}
		printList(idx.ListAliases(*p))
	case "pointsto":
		if *p < 0 {
			return fmt.Errorf("pointsto needs -p")
		}
		if err := checkPointer("p", *p); err != nil {
			return err
		}
		printList(idx.ListPointsTo(*p))
	case "pointedby":
		if *o < 0 {
			return fmt.Errorf("pointedby needs -o")
		}
		if *o >= idx.Objects() {
			return fmt.Errorf("-o %d out of range: %s has objects 0..%d", *o, *in, idx.Objects()-1)
		}
		printList(idx.ListPointedBy(*o))
	default:
		return fmt.Errorf("unknown op %q", *op)
	}
	return nil
}
