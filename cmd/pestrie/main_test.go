package main

import (
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pestrie"
	"pestrie/internal/server"
	"pestrie/internal/store"
)

func writeTestMatrix(t *testing.T, dir string) string {
	t.Helper()
	pm := pestrie.NewMatrix(6, 3)
	for _, f := range [][2]int{{0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}} {
		pm.Add(f[0], f[1])
	}
	path := filepath.Join(dir, "m.ptm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pm.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestEncodeInfoQuery(t *testing.T) {
	dir := t.TempDir()
	ptm := writeTestMatrix(t, dir)
	pes := filepath.Join(dir, "m.pes")

	if err := encode([]string{"-in", ptm, "-out", pes}); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if _, err := os.Stat(pes); err != nil {
		t.Fatalf("no output file: %v", err)
	}
	if err := info([]string{"-in", pes}); err != nil {
		t.Fatalf("info: %v", err)
	}
	for _, args := range [][]string{
		{"-in", pes, "-op", "isalias", "-p", "0", "-q", "1"},
		{"-in", pes, "-op", "aliases", "-p", "0"},
		{"-in", pes, "-op", "pointsto", "-p", "2"},
		{"-in", pes, "-op", "pointedby", "-o", "1"},
	} {
		if err := query(args); err != nil {
			t.Fatalf("query %v: %v", args, err)
		}
	}
}

func TestEncodeFromFacts(t *testing.T) {
	dir := t.TempDir()
	facts := filepath.Join(dir, "f.txt")
	if err := os.WriteFile(facts, []byte("a O1\nb O1\nc O2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pes := filepath.Join(dir, "f.pes")
	if err := encode([]string{"-facts", facts, "-out", pes}); err != nil {
		t.Fatal(err)
	}
	idx, err := pestrie.LoadFile(pes)
	if err != nil {
		t.Fatal(err)
	}
	if !idx.IsAlias(0, 1) || idx.IsAlias(0, 2) {
		t.Fatal("facts-encoded index wrong")
	}
	// Exactly one of -in/-facts.
	ptm := writeTestMatrix(t, dir)
	if err := encode([]string{"-in", ptm, "-facts", facts, "-out", pes}); err == nil {
		t.Fatal("accepted both -in and -facts")
	}
	if err := encode([]string{"-facts", filepath.Join(dir, "nope"), "-out", pes}); err == nil {
		t.Fatal("accepted missing facts file")
	}
}

func TestVerify(t *testing.T) {
	dir := t.TempDir()
	ptm := writeTestMatrix(t, dir)
	pes := filepath.Join(dir, "m.pes")
	if err := encode([]string{"-in", ptm, "-out", pes}); err != nil {
		t.Fatal(err)
	}
	if err := verify([]string{"-pes", pes, "-ptm", ptm}); err != nil {
		t.Fatalf("verify: %v", err)
	}
	// A mismatched matrix must fail verification.
	other := filepath.Join(dir, "other.ptm")
	pm := pestrie.NewMatrix(6, 3)
	pm.Add(0, 2)
	f, err := os.Create(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pm.WriteTo(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := verify([]string{"-pes", pes, "-ptm", other}); err == nil {
		t.Fatal("verify accepted mismatched matrix")
	}
	if err := verify(nil); err == nil {
		t.Fatal("verify without flags succeeded")
	}
	if err := verify([]string{"-pes", pes, "-ptm", filepath.Join(dir, "nope")}); err == nil {
		t.Fatal("verify with missing matrix succeeded")
	}
}

func TestEncodeVariants(t *testing.T) {
	dir := t.TempDir()
	ptm := writeTestMatrix(t, dir)
	for _, extra := range [][]string{
		{"-random-order"},
		{"-merge-objects"},
		{"-no-prune"},
		{"-random-order", "-seed", "9", "-no-prune"},
	} {
		out := filepath.Join(dir, "v.pes")
		args := append([]string{"-in", ptm, "-out", out}, extra...)
		if err := encode(args); err != nil {
			t.Fatalf("encode %v: %v", extra, err)
		}
		idx, err := pestrie.LoadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !idx.IsAlias(0, 1) || idx.IsAlias(0, 2) {
			t.Fatalf("variant %v produced wrong answers", extra)
		}
	}
}

func TestErrors(t *testing.T) {
	dir := t.TempDir()
	ptm := writeTestMatrix(t, dir)
	cases := []struct {
		name string
		fn   func([]string) error
		args []string
	}{
		{"encode-missing-flags", encode, nil},
		{"encode-missing-input", encode, []string{"-in", filepath.Join(dir, "nope"), "-out", filepath.Join(dir, "x")}},
		{"encode-bad-matrix", encode, []string{"-in", ptm + "x", "-out", filepath.Join(dir, "x")}},
		{"info-missing-flags", info, nil},
		{"info-missing-file", info, []string{"-in", filepath.Join(dir, "nope")}},
		{"query-missing-flags", query, nil},
		{"query-bad-op", query, []string{"-in", ptm, "-op", "nope"}},
	}
	for _, c := range cases {
		if err := c.fn(c.args); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
	// Query flag validation (needs a real .pes so Load succeeds first).
	pes := filepath.Join(dir, "q.pes")
	if err := encode([]string{"-in", ptm, "-out", pes}); err != nil {
		t.Fatal(err)
	}
	for _, args := range [][]string{
		{"-in", pes, "-op", "isalias", "-p", "0"},
		{"-in", pes, "-op", "aliases"},
		{"-in", pes, "-op", "pointsto"},
		{"-in", pes, "-op", "pointedby"},
	} {
		if err := query(args); err == nil {
			t.Errorf("query %v: expected error", args)
		}
	}
	// Out-of-range IDs are reported, not answered with empty sets: the
	// test matrix has pointers 0..5 and objects 0..2.
	for _, args := range [][]string{
		{"-in", pes, "-op", "isalias", "-p", "6", "-q", "0"},
		{"-in", pes, "-op", "isalias", "-p", "0", "-q", "6"},
		{"-in", pes, "-op", "aliases", "-p", "6"},
		{"-in", pes, "-op", "pointsto", "-p", "100"},
		{"-in", pes, "-op", "pointedby", "-o", "3"},
	} {
		if err := query(args); err == nil {
			t.Errorf("query %v: out-of-range ID accepted", args)
		}
	}
}

// TestServeAndBenchServe runs the full serve workflow end to end: encode a
// matrix, build the server from the -in spec, drive it over a real HTTP
// listener with the bench-serve subcommand, and hit the single-query and
// stats endpoints.
func TestServeAndBenchServe(t *testing.T) {
	dir := t.TempDir()
	ptm := writeTestMatrix(t, dir)
	pes := filepath.Join(dir, "m.pes")
	if err := encode([]string{"-in", ptm, "-out", pes}); err != nil {
		t.Fatalf("encode: %v", err)
	}

	s, err := newQueryServer(pes, server.Options{})
	if err != nil {
		t.Fatalf("newQueryServer: %v", err)
	}
	bs := s.Backends()
	if len(bs) != 1 || bs[0].Name != "default" {
		t.Fatalf("single unnamed index should register as default, got %+v", bs)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := benchServe([]string{
		"-addr", ts.URL, "-in", pes, "-n", "5", "-batch", "20",
		"-concurrency", "2", "-stride", "1",
		"-mix", "isalias=50,aliases=20,pointsto=20,pointedby=10",
	}); err != nil {
		t.Fatalf("bench-serve: %v", err)
	}

	resp, err := http.Post(ts.URL+"/query", "application/json",
		strings.NewReader(`{"op":"isalias","p":0,"q":1}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "alias") {
		t.Fatalf("query: status %d body %s", resp.StatusCode, body)
	}

	st := s.Stats()
	if st.Backends["default"]["batch"].Count != 5 {
		t.Fatalf("batch count = %d, want 5", st.Backends["default"]["batch"].Count)
	}
}

func TestServeMultipleNamedBackends(t *testing.T) {
	dir := t.TempDir()
	ptm := writeTestMatrix(t, dir)
	lib := filepath.Join(dir, "lib.pes")
	app := filepath.Join(dir, "app.pes")
	for _, out := range []string{lib, app} {
		if err := encode([]string{"-in", ptm, "-out", out}); err != nil {
			t.Fatalf("encode: %v", err)
		}
	}
	s, err := newQueryServer("lib="+lib+","+app, server.Options{})
	if err != nil {
		t.Fatalf("newQueryServer: %v", err)
	}
	names := []string{}
	for _, b := range s.Backends() {
		names = append(names, b.Name)
	}
	if len(names) != 2 || names[0] != "app" || names[1] != "lib" {
		t.Fatalf("backends = %v, want [app lib]", names)
	}
}

// TestServeSpecErrorNamesEntry pins the error contract of multi-backend
// -in specs: a failing entry must be identified as name=path in the error,
// not reported bare.
func TestServeSpecErrorNamesEntry(t *testing.T) {
	dir := t.TempDir()
	ptm := writeTestMatrix(t, dir)
	good := filepath.Join(dir, "good.pes")
	if err := encode([]string{"-in", ptm, "-out", good}); err != nil {
		t.Fatal(err)
	}
	missing := filepath.Join(dir, "missing.pes")
	_, err := newQueryServer("lib="+good+",app="+missing, server.Options{})
	if err == nil {
		t.Fatal("spec with missing file accepted")
	}
	if !strings.Contains(err.Error(), "app="+missing) {
		t.Fatalf("error %q does not name the offending entry app=%s", err, missing)
	}
	// Duplicate names are attributed the same way.
	_, err = newQueryServer("x="+good+",x="+good, server.Options{})
	if err == nil || !strings.Contains(err.Error(), "x="+good) {
		t.Fatalf("duplicate-name error %q does not name the entry", err)
	}
}

// TestStoreServe builds the store-backed serve configuration against a
// directory of .pes files and issues one query per backend plus the
// store debug endpoint — the CLI face of internal/store.
func TestStoreServe(t *testing.T) {
	dir := t.TempDir()
	ptm := writeTestMatrix(t, dir)
	pesDir := filepath.Join(dir, "pes")
	if err := os.Mkdir(pesDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"lib", "app"} {
		if err := encode([]string{"-in", ptm, "-out", filepath.Join(pesDir, name+".pes")}); err != nil {
			t.Fatal(err)
		}
	}
	s, st, err := newStoreServer("", pesDir, server.Options{}, store.Options{MemBudget: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	names := st.Names()
	if len(names) != 2 || names[0] != "app" || names[1] != "lib" {
		t.Fatalf("catalog = %v, want [app lib]", names)
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, name := range names {
		resp, err := http.Post(ts.URL+"/query", "application/json",
			strings.NewReader(`{"backend":"`+name+`","op":"isalias","p":0,"q":1}`))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "alias") {
			t.Fatalf("query %s: status %d body %s", name, resp.StatusCode, body)
		}
	}
	resp, err := http.Get(ts.URL + "/debug/store")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"loaded":true`) {
		t.Fatalf("/debug/store: status %d body %s", resp.StatusCode, body)
	}

	// -in specs also feed the store catalog, with the same entry-naming
	// error contract as the eager path.
	_, _, err = newStoreServer("x=nope,x=nope", "", server.Options{}, store.Options{})
	if err == nil || !strings.Contains(err.Error(), "x=nope") {
		t.Fatalf("store spec error %q does not name the entry", err)
	}
}

func TestParseMix(t *testing.T) {
	m, err := parseMix("isalias=70,pointsto=30")
	if err != nil {
		t.Fatal(err)
	}
	if m.IsAlias != 70 || m.PointsTo != 30 || m.Aliases != 0 || m.PointedBy != 0 {
		t.Fatalf("mix = %+v", m)
	}
	for _, bad := range []string{"x=1", "isalias", "isalias=-2", "isalias=zz"} {
		if _, err := parseMix(bad); err == nil {
			t.Fatalf("parseMix(%q) accepted", bad)
		}
	}
}

// TestShardedTierEndToEnd builds the serve -shards plumbing directly: a
// 3-shard tier over one encoded file must answer exactly like a single
// eager server, and its coordinator must expose /debug/coord.
func TestShardedTierEndToEnd(t *testing.T) {
	dir := t.TempDir()
	ptm := writeTestMatrix(t, dir)
	pes := filepath.Join(dir, "m.pes")
	if err := encode([]string{"-in", ptm, "-out", pes}); err != nil {
		t.Fatalf("encode: %v", err)
	}

	servers, _, cleanup, err := buildServers(3, pes, "", server.Options{}, store.Options{}, false)
	if err != nil {
		t.Fatal(err)
	}
	defer cleanup()
	tier, err := startShards(servers, server.CoordOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer tier.cleanup()
	cts := httptest.NewServer(tier.coord.Handler())
	defer cts.Close()

	single, err := newQueryServer(pes, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sts := httptest.NewServer(single.Handler())
	defer sts.Close()

	body := `{"queries":[{"op":"aliases","p":0},{"op":"pointsto","p":2},{"op":"isalias","p":0,"q":1},{"op":"pointedby","o":1}]}`
	fetch := func(url string) string {
		t.Helper()
		resp, err := http.Post(url+"/batch", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", url, resp.StatusCode, raw)
		}
		return string(raw)
	}
	want := fetch(sts.URL)
	if got := fetch(cts.URL); got != want {
		t.Fatalf("tier answer diverges:\nwant %s\ngot  %s", want, got)
	}

	resp, err := http.Get(cts.URL + "/debug/coord")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/coord status %d", resp.StatusCode)
	}
}
