package main

import (
	"strings"
	"testing"
)

func TestRunSingleTable(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-table", "2", "-scale", "0.002", "-presets", "antlr"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "antlr") {
		t.Fatalf("unexpected output:\n%s", out)
	}
	if strings.Contains(out, "Figure 1") {
		t.Fatal("-table 2 also ran figure 1")
	}
}

func TestRunAll(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var sb strings.Builder
	if err := run([]string{"-scale", "0.002", "-presets", "antlr"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Table 2", "Figure 1", "Table 7", "Table 8", "Figure 7", "Ablations"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunAndersTable(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-table", "anders", "-presets", "anders-base", "-j", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Anders bench") || !strings.Contains(out, "anders-base") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestRunAllSkipsAndersBench(t *testing.T) {
	var sb strings.Builder
	// Restricting to one tiny preset keeps "all" fast; the engine bench
	// must not run unless named explicitly.
	if err := run([]string{"-table", "2", "-scale", "0.002", "-presets", "antlr"}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "Anders bench") {
		t.Fatal("-table 2 also ran the anders bench")
	}
}

func TestRunUnknownTable(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-table", "nope"}, &sb); err == nil {
		t.Fatal("accepted unknown table")
	}
}

func TestRunBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Fatal("accepted unknown flag")
	}
}
