// Command benchtables regenerates the paper's evaluation tables and
// figures over the scaled benchmark presets (see DESIGN.md for the
// per-experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	benchtables -table all
//	benchtables -table 7 -presets antlr,chart -scale 0.01
//	benchtables -table fig7 -scale 0.005
//	benchtables -table build -presets fop -scale 0.05 -json BENCH_build.json
//	benchtables -table anders -json BENCH_anders.json
//	benchtables -table serve -json BENCH_serve.json
//
// Tables: 2, fig1, 7, 8, fig7, ablation, build, all, plus anders and serve
// (run only when named — they measure the constraint engine and the
// serving tier, not paper tables). The build experiment measures -j1 vs
// -jN construction and decode (see internal/exper's BuildBench); the
// anders experiment measures constraint solving across worker counts and
// the HVN ablation over the program presets (`ptagen list`); the serve
// experiment stands up a sharded coordinator tier per preset, gates on
// byte-identity against a single-process server, and measures the answer
// cache under a zipfian multi-tenant stream. -j sizes the pools and -json
// additionally writes the experiment's rows as JSON.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pestrie/internal/bitset"
	"pestrie/internal/exper"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(2)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	bitset.Flag(fs)
	table := fs.String("table", "all", "which experiment: 2 | fig1 | 7 | 8 | fig7 | ablation | build | anders | serve | all")
	scale := fs.Float64("scale", 0.01, "benchmark scale vs the paper's sizes")
	presets := fs.String("presets", "", "comma-separated preset names (default: all 12)")
	stride := fs.Int("stride", 0, "base-pointer stride (0 = auto ≈1000 base pointers)")
	jobs := fs.Int("j", 0, "worker-pool size for the parallel columns (0 = GOMAXPROCS)")
	jsonOut := fs.String("json", "", "also write the build/anders experiment's rows as JSON to this path")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := &exper.Options{Scale: *scale, BaseStride: *stride, Workers: *jobs}
	if *presets != "" {
		opts.Presets = strings.Split(*presets, ",")
	}

	writeJSON := func(write func(io.Writer) error) error {
		if *jsonOut == "" {
			return nil
		}
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	buildBench := func(o *exper.Options) (string, error) {
		rows := exper.BuildBench(o)
		if err := writeJSON(func(w io.Writer) error { return exper.WriteBuildBenchJSON(w, rows) }); err != nil {
			return "", err
		}
		return exper.RenderBuildBench(rows), nil
	}
	andersBench := func(o *exper.Options) (string, error) {
		rows := exper.AndersBench(o)
		if err := writeJSON(func(w io.Writer) error { return exper.WriteAndersBenchJSON(w, rows) }); err != nil {
			return "", err
		}
		return exper.RenderAndersBench(rows), nil
	}
	serveBench := func(o *exper.Options) (string, error) {
		rows := exper.ServeBench(o)
		if err := writeJSON(func(w io.Writer) error { return exper.WriteServeBenchJSON(w, rows) }); err != nil {
			return "", err
		}
		return exper.RenderServeBench(rows), nil
	}

	experiments := []struct {
		key, name string
		fn        func(*exper.Options) (string, error)
	}{
		{"2", "table 2", func(o *exper.Options) (string, error) { return exper.RenderTable2(exper.Table2(o)), nil }},
		{"fig1", "figure 1", func(o *exper.Options) (string, error) { return exper.RenderFigure1(exper.Figure1(o)), nil }},
		{"7", "table 7", func(o *exper.Options) (string, error) { return exper.RenderTable7(exper.Table7(o)), nil }},
		{"8", "table 8", func(o *exper.Options) (string, error) { return exper.RenderTable8(exper.Table8(o)), nil }},
		{"fig7", "figure 7", func(o *exper.Options) (string, error) { return exper.RenderFigure7(exper.Figure7(o)), nil }},
		{"ablation", "ablations", func(o *exper.Options) (string, error) { return exper.RenderAblations(exper.Ablations(o)), nil }},
		{"build", "build bench", buildBench},
		{"anders", "anders bench", andersBench},
		{"serve", "serve bench", serveBench},
	}
	named := map[string]bool{"anders": true, "serve": true}
	any := false
	for _, e := range experiments {
		// "all" covers the paper tables; the engine and serving benches run
		// only when asked for by name.
		if *table != e.key && !(*table == "all" && !named[e.key]) {
			continue
		}
		any = true
		start := time.Now()
		out, err := e.fn(opts)
		if err != nil {
			return err
		}
		fmt.Fprint(w, out)
		fmt.Fprintf(w, "[%s regenerated in %s]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !any {
		return fmt.Errorf("unknown table %q", *table)
	}
	return nil
}
