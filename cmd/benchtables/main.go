// Command benchtables regenerates the paper's evaluation tables and
// figures over the scaled benchmark presets (see DESIGN.md for the
// per-experiment index and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	benchtables -table all
//	benchtables -table 7 -presets antlr,chart -scale 0.01
//	benchtables -table fig7 -scale 0.005
//
// Tables: 2, fig1, 7, 8, fig7, ablation, all.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"pestrie/internal/exper"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(2)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	table := fs.String("table", "all", "which experiment: 2 | fig1 | 7 | 8 | fig7 | ablation | all")
	scale := fs.Float64("scale", 0.01, "benchmark scale vs the paper's sizes")
	presets := fs.String("presets", "", "comma-separated preset names (default: all 12)")
	stride := fs.Int("stride", 0, "base-pointer stride (0 = auto ≈1000 base pointers)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	opts := &exper.Options{Scale: *scale, BaseStride: *stride}
	if *presets != "" {
		opts.Presets = strings.Split(*presets, ",")
	}

	experiments := []struct {
		key, name string
		fn        func(*exper.Options) string
	}{
		{"2", "table 2", func(o *exper.Options) string { return exper.RenderTable2(exper.Table2(o)) }},
		{"fig1", "figure 1", func(o *exper.Options) string { return exper.RenderFigure1(exper.Figure1(o)) }},
		{"7", "table 7", func(o *exper.Options) string { return exper.RenderTable7(exper.Table7(o)) }},
		{"8", "table 8", func(o *exper.Options) string { return exper.RenderTable8(exper.Table8(o)) }},
		{"fig7", "figure 7", func(o *exper.Options) string { return exper.RenderFigure7(exper.Figure7(o)) }},
		{"ablation", "ablations", func(o *exper.Options) string { return exper.RenderAblations(exper.Ablations(o)) }},
	}
	any := false
	for _, e := range experiments {
		if *table != "all" && *table != e.key {
			continue
		}
		any = true
		start := time.Now()
		fmt.Fprint(w, e.fn(opts))
		fmt.Fprintf(w, "[%s regenerated in %s]\n\n", e.name, time.Since(start).Round(time.Millisecond))
	}
	if !any {
		return fmt.Errorf("unknown table %q", *table)
	}
	return nil
}
